// Package load turns directories of Go source into typechecked packages for
// the paris-vet analyzers, using nothing but the standard library.
//
// Three import domains are resolved, in order:
//
//  1. a fixture root (analysistest's testdata/src), so analyzer fixtures can
//     declare their own miniature wire/transport packages;
//  2. the enclosing module (github.com/paris-kv/paris/...), mapped straight
//     onto the repository tree — go/build alone cannot do this in module
//     mode, which is why the resolution lives here;
//  3. everything else (the standard library), delegated to the stdlib
//     source importer, which typechecks GOROOT packages from source and so
//     works offline with no export data installed.
//
// When paris-vet runs as a `go vet -vettool`, none of this is used: the vet
// driver hands over a build-system config with gc export data and
// cmd/paris-vet typechecks against that instead (see vetcfg.go there).
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked package unit.
type Package struct {
	PkgPath   string
	Name      string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader loads and caches packages. Not safe for concurrent use.
type Loader struct {
	Fset *token.FileSet
	// ModulePath/ModuleDir anchor domain 2 (the enclosing module).
	ModulePath string
	ModuleDir  string
	// FixtureRoot, when set, is checked before the module (domain 1).
	FixtureRoot string
	// IncludeTests adds _test.go files to packages loaded via Load (never
	// to transitively imported dependencies).
	IncludeTests bool

	cache map[string]*types.Package
	src   types.Importer
}

// New returns a loader rooted at the given module.
func New(modulePath, moduleDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		cache:      make(map[string]*types.Package),
		src:        importer.ForCompiler(fset, "source", nil),
	}
}

// dirFor resolves an import path to a directory in domains 1–2; ok=false
// means "not ours" (delegate to the source importer).
func (l *Loader) dirFor(path string) (string, bool) {
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer over the three domains.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return l.src.Import(path)
	}
	pkg, err := l.load(dir, path, false)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg.Types
	return pkg.Types, nil
}

// Load typechecks the package in dir under the given import path. With
// IncludeTests set, in-package _test.go files join the unit and an external
// "_test" package, if present, is returned as a second unit (mirroring the
// package units `go vet` analyzes).
func (l *Loader) Load(dir, path string) ([]*Package, error) {
	pkg, err := l.load(dir, path, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	// Never overwrite a cache entry: if a dependent already imported this
	// package (test-free variant), its types are woven into that dependent's
	// signatures, and replacing the entry would split the package into two
	// non-identical types.Package universes.
	if _, ok := l.cache[path]; !ok {
		l.cache[path] = pkg.Types
	}
	out := []*Package{pkg}
	if l.IncludeTests {
		ext, err := l.loadExternalTests(dir, path, pkg.Types)
		if err != nil {
			return nil, err
		}
		if ext != nil {
			out = append(out, ext)
		}
	}
	return out, nil
}

// selfImporter resolves one package path to a pre-built package (the
// test-inclusive unit an external _test package belongs to) and delegates
// the rest.
type selfImporter struct {
	path string
	pkg  *types.Package
	next types.Importer
}

func (s selfImporter) Import(path string) (*types.Package, error) {
	if path == s.path {
		return s.pkg, nil
	}
	return s.next.Import(path)
}

// goFiles lists the buildable .go files of dir: tests excluded or not, and
// external-test-package files (package foo_test) handled by the caller.
func (l *Loader) goFiles(dir string, tests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		// MatchFile applies //go:build lines and filename-implied
		// GOOS/GOARCH constraints with the host toolchain's tags.
		if ok, err := ctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (l *Loader) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

func (l *Loader) check(path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newInfo()
	cfg := types.Config{Importer: imp}
	pkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return pkg, info, nil
}

func (l *Loader) load(dir, path string, tests bool) (*Package, error) {
	names, err := l.goFiles(dir, tests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load %s: no buildable Go files in %s", path, dir)
	}
	files, err := l.parse(dir, names)
	if err != nil {
		return nil, err
	}
	// Primary package name: the one declared by non-test files (in-package
	// tests share it; external-test files are a separate unit).
	primary := ""
	for i, f := range files {
		if !strings.HasSuffix(names[i], "_test.go") {
			primary = f.Name.Name
			break
		}
	}
	if primary == "" && len(files) > 0 {
		primary = strings.TrimSuffix(files[0].Name.Name, "_test")
	}
	var unit []*ast.File
	for _, f := range files {
		if f.Name.Name == primary {
			unit = append(unit, f)
		}
	}
	tpkg, info, err := l.check(path, unit, l)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath:   path,
		Name:      primary,
		Fset:      l.Fset,
		Syntax:    unit,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// loadExternalTests builds the foo_test unit of dir, if any. Imports of the
// primary package resolve to the test-inclusive unit just built (external
// tests may reference in-package test helpers); everything else goes
// through the loader.
func (l *Loader) loadExternalTests(dir, path string, primary *types.Package) (*Package, error) {
	names, err := l.goFiles(dir, true)
	if err != nil {
		return nil, err
	}
	var extNames []string
	for _, name := range names {
		if !strings.HasSuffix(name, "_test.go") {
			continue
		}
		extNames = append(extNames, name)
	}
	files, err := l.parse(dir, extNames)
	if err != nil {
		return nil, err
	}
	var unit []*ast.File
	for _, f := range files {
		if strings.HasSuffix(f.Name.Name, "_test") {
			unit = append(unit, f)
		}
	}
	if len(unit) == 0 {
		return nil, nil
	}
	extPath := path + "_test"
	imp := selfImporter{path: path, pkg: primary, next: l}
	tpkg, info, err := l.check(extPath, unit, imp)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath:   extPath,
		Name:      unit[0].Name.Name,
		Fset:      l.Fset,
		Syntax:    unit,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

package paris

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/paris-kv/paris/internal/client"
	"github.com/paris-kv/paris/internal/server"
	"github.com/paris-kv/paris/internal/topology"
	"github.com/paris-kv/paris/internal/transport"
)

// TestTCPDeploymentEndToEnd boots a complete 3-DC deployment over real TCP
// sockets — the cmd/paris-server + cmd/paris-client path — and runs
// transactions against it, proving the wire codec, framing and FIFO
// assumptions hold outside the in-memory simulator.
func TestTCPDeploymentEndToEnd(t *testing.T) {
	topo, err := topology.New(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}

	// The book is mutated while servers run (clients join with ephemeral
	// addresses after startup), so it must be the concurrency-safe variant.
	book := transport.NewSyncBook()
	var (
		servers []*server.Server
		nodes   []*transport.TCPNode
	)
	t.Cleanup(func() {
		for _, s := range servers {
			s.Stop()
		}
		for _, n := range nodes {
			_ = n.Close()
		}
	})
	for _, id := range topo.AllServers() {
		srv, err := server.New(server.Config{
			ID:             id,
			Topology:       topo,
			ApplyInterval:  time.Millisecond,
			GossipInterval: time.Millisecond,
			USTInterval:    time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		node, err := transport.ListenTCP(id, "127.0.0.1:0", book, srv.Peer())
		if err != nil {
			t.Fatal(err)
		}
		srv.Peer().Attach(node)
		book.Set(id, node.ListenAddr())
		servers = append(servers, srv)
		nodes = append(nodes, node)
	}
	for _, srv := range servers {
		srv.Start()
	}

	// A TCP client homed in DC 0 with partition 0 as coordinator.
	newTCPClient := func(idx int32, dc topology.DCID, coord topology.PartitionID) *client.Client {
		cl, err := client.New(client.Config{
			ID:          topology.ClientID(dc, idx),
			Coordinator: topology.ServerID(dc, coord),
			CallTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		cnode, err := transport.ListenTCP(cl.ID(), "127.0.0.1:0", book, cl.Peer())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = cnode.Close() })
		cl.Peer().Attach(cnode)
		book.Set(cl.ID(), cnode.ListenAddr())
		return cl
	}

	ctx := context.Background()
	alice := newTCPClient(0, 0, 0)

	// Write a batch of keys spanning partitions.
	if err := alice.Start(ctx); err != nil {
		t.Fatal(err)
	}
	kvs := map[string]string{}
	for i := 0; i < 9; i++ {
		k := fmt.Sprintf("tcp-%d", i)
		kvs[k] = fmt.Sprintf("v%d", i)
		if err := alice.Write(k, []byte(kvs[k])); err != nil {
			t.Fatal(err)
		}
	}
	ct, err := alice.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ct == 0 {
		t.Fatal("zero commit timestamp")
	}

	// Read-your-writes over TCP.
	if err := alice.Start(ctx); err != nil {
		t.Fatal(err)
	}
	vals, err := alice.Read(ctx, "tcp-0", "tcp-5")
	if err != nil {
		t.Fatal(err)
	}
	if string(vals["tcp-0"]) != "v0" || string(vals["tcp-5"]) != "v5" {
		t.Fatalf("read-your-writes over TCP failed: %v", vals)
	}
	if _, err := alice.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Wait until the UST passes the commit, then read from another DC.
	deadline := time.Now().Add(10 * time.Second)
	for {
		low := servers[0].UST()
		for _, s := range servers {
			if u := s.UST(); u < low {
				low = u
			}
		}
		if low >= ct {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("UST stalled below commit ts over TCP (min=%v ct=%v)", low, ct)
		}
		time.Sleep(2 * time.Millisecond)
	}

	bob := newTCPClient(0, 1, topo.PartitionsAt(1)[0])
	if err := bob.Start(ctx); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(kvs))
	for k := range kvs {
		keys = append(keys, k)
	}
	vals, err = bob.Read(ctx, keys...)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range kvs {
		if string(vals[k]) != want {
			t.Fatalf("remote DC read %q = %q, want %q", k, vals[k], want)
		}
	}
	if _, err := bob.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

package paris

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/paris-kv/paris/internal/check"
	"github.com/paris-kv/paris/internal/workload"
)

// TestPartitionChurnPreservesTCC runs a concurrent mixed workload while a DC
// is repeatedly partitioned from and rejoined to the WAN, then validates the
// full recorded history with the offline TCC checker. Network partitions
// must degrade freshness (UST freezes) but never consistency.
func TestPartitionChurnPreservesTCC(t *testing.T) {
	cfg := testConfig()
	c := newTestCluster(t, cfg)
	ctx := context.Background()

	const (
		sessions     = 6
		txPerSession = 40
	)
	mix := workload.Mix{ReadsPerTx: 5, WritesPerTx: 2, PartitionsPerTx: 3,
		LocalRatio: 0.7, Theta: 0.8, ValueSize: 8}
	ks := workload.NewKeyspace(c.Topology(), 20)

	// Churn goroutine: isolate DC 2, hold, heal, repeat.
	churnDone := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-churnDone:
				c.Net().IsolateDC(2, false, 3) // always heal on exit
				return
			case <-time.After(40 * time.Millisecond):
			}
			c.Net().IsolateDC(2, i%2 == 0, 3)
		}
	}()

	histories := make([]*check.History, sessions)
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Only DCs 0 and 1 host clients: DC 2 is the one being cut off,
			// and the paper's availability property (§III-C) covers clients
			// in connected DCs. Transactions that need DC-2 replicas stall
			// until heal (the churn period is shorter than the call timeout).
			dc := DCID(i % 2)
			sess, err := c.NewSession(dc)
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			rs := &recordingSession{s: sess, id: i, history: &check.History{}}
			histories[i] = rs.history
			gen := workload.NewGenerator(mix, c.Topology(), ks, dc, int64(2000+i))
			for n := 0; n < txPerSession; n++ {
				if err := rs.runPlan(ctx, gen.Next()); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(churnDone)
	churnWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	merged := &check.History{}
	for _, h := range histories {
		if h != nil {
			merged.Merge(h)
		}
	}
	if merged.Len() == 0 {
		t.Fatal("no transactions recorded")
	}
	if vs := merged.Check(); len(vs) != 0 {
		for i, v := range vs {
			if i > 5 {
				break
			}
			t.Error(v)
		}
		t.Fatalf("TCC violations under partition churn: %d", len(vs))
	}
}

// TestHighContentionSingleKey drives every session at one key from every DC
// — the worst case for last-writer-wins convergence and for the apply loop's
// same-timestamp grouping — and checks all replicas agree afterwards.
func TestHighContentionSingleKey(t *testing.T) {
	c := newTestCluster(t, testConfig())
	ctx := context.Background()

	const (
		sessions = 9
		writes   = 25
	)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		last Timestamp
	)
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.NewSession(DCID(i % 3))
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			for n := 0; n < writes; n++ {
				ct, err := s.Put(ctx, map[string][]byte{
					"hotspot": []byte{byte(i), byte(n)},
				})
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				if ct > last {
					last = ct
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !c.WaitForUST(last, 10*time.Second) {
		t.Fatal("UST stalled")
	}

	p := c.Topology().PartitionOf("hotspot")
	var winner []byte
	for _, dc := range c.Topology().ReplicaDCs(p) {
		item, ok := c.Server(dc, int(p)).Store().ReadLatest("hotspot")
		if !ok {
			t.Fatalf("replica %d lost the key", dc)
		}
		if winner == nil {
			winner = item.Value
		} else if string(winner) != string(item.Value) {
			t.Fatalf("replicas diverged after contention: %v vs %v", winner, item.Value)
		}
	}
}

// TestManySessionsLifecycle opens and closes many sessions concurrently,
// exercising client registration/cleanup paths for leaks and races.
func TestManySessionsLifecycle(t *testing.T) {
	c := newTestCluster(t, testConfig())
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 60)
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.NewSession(DCID(i % 3))
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			if _, err := s.Put(ctx, map[string][]byte{"life": []byte{byte(i)}}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

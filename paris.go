// Package paris is a from-scratch Go implementation of PaRiS (Spirovska,
// Didona, Zwaenepoel — ICDCS 2019): Transactional Causal Consistency with
// partial replication and non-blocking parallel reads, built on the
// Universal Stable Time (UST) dependency-tracking protocol.
//
// A Cluster embeds a full multi-data-center deployment in one process: one
// goroutine-backed server per partition replica, connected by a simulated
// WAN whose latencies follow the paper's ten-region AWS geography. Sessions
// run interactive read-write transactions against it:
//
//	cluster, _ := paris.NewCluster(paris.DefaultConfig())
//	defer cluster.Close()
//	s, _ := cluster.NewSession(0) // a client in DC 0
//	defer s.Close()
//
//	_ = s.Update(ctx, func(tx *paris.Tx) error {
//		tx.Write("user:alice", []byte("hi"))
//		return nil
//	})
//
// The same servers also run over real TCP (cmd/paris-server) for
// multi-process deployments.
package paris

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/paris-kv/paris/internal/client"
	"github.com/paris-kv/paris/internal/clock"
	"github.com/paris-kv/paris/internal/hlc"
	"github.com/paris-kv/paris/internal/server"
	"github.com/paris-kv/paris/internal/store"
	"github.com/paris-kv/paris/internal/topology"
	"github.com/paris-kv/paris/internal/transport"
)

// Timestamp re-exports the hybrid logical timestamp used for snapshots and
// commit times.
type Timestamp = hlc.Timestamp

// DCID identifies a data center.
type DCID = topology.DCID

// Cluster is an embedded multi-DC PaRiS deployment.
type Cluster struct {
	cfg  Config
	topo *topology.Topology
	net  *transport.MemNet

	resolvers *resolverTable

	// mkServer rebuilds a server for one node over an existing store and 2PC
	// log — the restart half of a crash/restart episode. It captures the
	// cluster-wide configuration so a restarted replica is indistinguishable
	// from the original except for its (lost) volatile stabilization state.
	mkServer func(id topology.NodeID, st *store.MVStore, rec *server.TwoPCExport, hold time.Duration) (*server.Server, error)

	mu        sync.Mutex
	servers   map[topology.NodeID]*server.Server
	crashed   map[topology.NodeID]*server.Server
	clocks    map[topology.NodeID]clock.Source
	skews     map[topology.NodeID]*clock.Skewed
	clientSeq map[topology.DCID]int32
	coordSeq  map[topology.DCID]int
	closed    bool
}

// NewCluster builds and starts a cluster: topology, simulated WAN, and one
// server per partition replica.
func NewCluster(cfg Config) (*Cluster, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	topo, err := topology.New(full.NumDCs, full.NumPartitions, full.ReplicationFactor)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:       full,
		topo:      topo,
		net:       transport.NewMemNet(full.Latency),
		servers:   make(map[topology.NodeID]*server.Server),
		crashed:   make(map[topology.NodeID]*server.Server),
		clocks:    make(map[topology.NodeID]clock.Source),
		skews:     make(map[topology.NodeID]*clock.Skewed),
		clientSeq: make(map[topology.DCID]int32),
		coordSeq:  make(map[topology.DCID]int),
		resolvers: newResolverTable(full.Resolvers),
	}
	var selector topology.Selector
	if full.PreferNearestReplica {
		if geo, ok := full.Latency.(*transport.GeoModel); ok {
			selector = topology.NewDistanceSelector(topo, func(a, b topology.DCID) float64 {
				return float64(geo.RTTBetween(a, b))
			})
		}
	}
	rng := rand.New(rand.NewSource(full.Seed))
	base := clock.System{}
	for _, id := range topo.AllServers() {
		var src clock.Source = base
		if full.ClockSkew > 0 {
			skew := time.Duration(rng.Int63n(int64(2*full.ClockSkew))) - full.ClockSkew
			skewed := clock.NewSkewed(base, skew, 0)
			c.skews[id] = skewed
			src = skewed
		}
		c.clocks[id] = src
	}
	c.mkServer = func(id topology.NodeID, st *store.MVStore, rec *server.TwoPCExport, hold time.Duration) (*server.Server, error) {
		return server.New(server.Config{
			ID:               id,
			Topology:         topo,
			Mode:             full.Mode,
			Selector:         selector,
			Clock:            c.clocks[id],
			Store:            st,
			Recovered2PC:     rec,
			RecoveryHold:     hold,
			ApplyInterval:    full.ApplyInterval,
			BatchMaxItems:    full.BatchMaxItems,
			BatchMaxBytes:    full.BatchMaxBytes,
			BandwidthBudget:  full.BandwidthBudget,
			BudgetBurst:      full.BudgetBurst,
			FlowHighWater:    full.FlowHighWater,
			FlowLowWater:     full.FlowLowWater,
			GossipInterval:   full.GossipInterval,
			USTInterval:      full.USTInterval,
			GossipIdleMax:    full.GossipIdleMax,
			GossipStatic:     full.GossipStatic,
			GCInterval:       full.GCInterval,
			TxContextTTL:     full.TxContextTTL,
			CallTimeout:      full.CallTimeout,
			PreparedTTL:      full.PreparedTTL,
			PrepareBatchMax:  full.PrepareBatchMax,
			ApplyWorkers:     full.ApplyWorkers,
			VisibilitySample: full.VisibilitySample,
			ResolverFor:      c.resolvers.storeResolverFor,
		})
	}
	for _, id := range topo.AllServers() {
		srv, err := c.mkServer(id, nil, nil, 0)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		ep, err := c.net.Register(id, srv.Peer())
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		srv.Peer().Attach(ep)
		c.servers[id] = srv
	}
	for _, srv := range c.servers {
		srv.Start()
	}
	return c, nil
}

// Topology returns the cluster's deployment shape.
func (c *Cluster) Topology() *topology.Topology { return c.topo }

// Config returns the cluster's effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Net exposes the simulated network for fault injection (partitions) and
// message accounting.
func (c *Cluster) Net() *transport.MemNet { return c.net }

// Server returns the replica of partition p hosted in dc, or nil when dc
// does not replicate p (or the replica is currently crashed).
func (c *Cluster) Server(dc DCID, p int) *server.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[topology.ServerID(dc, topology.PartitionID(p))]
}

// Servers returns every live server in the cluster.
func (c *Cluster) Servers() []*server.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*server.Server, 0, len(c.servers))
	for _, s := range c.servers {
		out = append(out, s)
	}
	return out
}

// CrashServer models a process crash of one partition replica: the node
// vanishes from the network (in-flight messages toward it drop, new sends
// fail fast) and its server stops, losing all volatile stabilization and
// replication state. The multiversion store and the 2PC log (prepared
// entries, decision memory, tombstones) survive — together they stand in
// for the write-ahead log a real presumed-abort deployment replays on
// recovery; a prepare is durably logged before it is acknowledged, so a
// crash can never silently drop an acked slice of a committed transaction.
// RestartServer brings the node back.
func (c *Cluster) CrashServer(id topology.NodeID) error {
	c.mu.Lock()
	srv, ok := c.servers[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("paris: no live server %v", id)
	}
	delete(c.servers, id)
	c.crashed[id] = srv
	c.mu.Unlock()
	c.net.Deregister(id)
	srv.Stop()
	return nil
}

// RestartServer revives a crashed replica: a fresh server over the crashed
// instance's store and 2PC log rejoins the network and starts with a
// recovery hold of the given duration (see server.Config.RecoveryHold — the
// apply plane stays frozen, and with it this node's UST contribution, until
// coordinators have had time to re-deliver any commit decisions lost in the
// crash). Recovered prepared entries immediately query their coordinators'
// decision memory, so a CohortCommit that was in flight when the process
// died is recovered rather than lost (see server.TwoPCExport).
func (c *Cluster) RestartServer(id topology.NodeID, hold time.Duration) error {
	c.mu.Lock()
	old, ok := c.crashed[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("paris: server %v is not crashed", id)
	}
	delete(c.crashed, id)
	c.mu.Unlock()
	srv, err := c.mkServer(id, old.Store(), old.ExportTwoPC(), hold)
	if err != nil {
		return err
	}
	ep, err := c.net.Register(id, srv.Peer())
	if err != nil {
		return err
	}
	srv.Peer().Attach(ep)
	c.mu.Lock()
	c.servers[id] = srv
	c.mu.Unlock()
	srv.Start()
	return nil
}

// SetClockSkew re-points one server's physical-clock skew mid-run, modelling
// an NTP step or a drifting oscillator. It reports whether the node has a
// skewable clock — clocks are only skew-wrapped when Config.ClockSkew > 0.
func (c *Cluster) SetClockSkew(id topology.NodeID, skew time.Duration) bool {
	c.mu.Lock()
	sk, ok := c.skews[id]
	c.mu.Unlock()
	if ok {
		sk.SetSkew(skew)
	}
	return ok
}

// SetFlowBudget reconfigures every live server's replication bandwidth
// budget at runtime (no-op on servers without flow control). The nemesis
// harness uses it to open the throttle after healing a constrained link so
// a degraded replica's backlog drains quickly.
func (c *Cluster) SetFlowBudget(rate, burst int) {
	for _, s := range c.Servers() {
		s.SetFlowBudget(rate, burst)
	}
}

// MigrateSession moves a session to another data center: the session's
// causal state (stable snapshot, last commit time, private write cache)
// transfers into a fresh client homed in dc, and the old session closes.
// The migrated session keeps reading its own writes and their causal
// dependencies — the guarantees ride on the carried state, not on the
// original coordinator. Fails if a transaction is open.
func (c *Cluster) MigrateSession(s *Session, dc DCID) (*Session, error) {
	h, err := s.c.Export()
	if err != nil {
		return nil, err
	}
	ns, err := c.NewSession(dc)
	if err != nil {
		return nil, err
	}
	if err := ns.c.Import(h); err != nil {
		ns.Close()
		return nil, err
	}
	s.Close()
	return ns, nil
}

// Close stops every server and the network.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	servers := make([]*server.Server, 0, len(c.servers))
	for _, srv := range c.servers {
		servers = append(servers, srv)
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, srv := range servers {
		wg.Add(1)
		go func(s *server.Server) {
			defer wg.Done()
			s.Stop()
		}(srv)
	}
	wg.Wait()
	return c.net.Close()
}

// NewSession opens a client session homed in dc. The coordinator is chosen
// round-robin among the partitions the DC hosts, emulating the paper's
// client placement (one client process per partition, collocated with its
// coordinator).
func (c *Cluster) NewSession(dc DCID) (*Session, error) {
	local := c.topo.PartitionsAt(dc)
	if len(local) == 0 {
		return nil, fmt.Errorf("paris: DC %d hosts no partitions", dc)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("paris: cluster closed")
	}
	seq := c.clientSeq[dc]
	c.clientSeq[dc] = seq + 1
	coord := local[c.coordSeq[dc]%len(local)]
	c.coordSeq[dc]++
	c.mu.Unlock()
	return c.newSessionAt(dc, seq, coord)
}

// NewSessionAt opens a session with an explicit coordinator partition.
func (c *Cluster) NewSessionAt(dc DCID, partition int) (*Session, error) {
	p := topology.PartitionID(partition)
	if !c.topo.IsReplicatedAt(p, dc) {
		return nil, fmt.Errorf("paris: DC %d does not replicate partition %d", dc, partition)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("paris: cluster closed")
	}
	seq := c.clientSeq[dc]
	c.clientSeq[dc] = seq + 1
	c.mu.Unlock()
	return c.newSessionAt(dc, seq, p)
}

func (c *Cluster) newSessionAt(dc DCID, seq int32, coord topology.PartitionID) (*Session, error) {
	return c.newSessionOpts(dc, seq, coord, false)
}

// newSessionOpts is the full-option session constructor; disableCache is a
// harness hook for the cache ablation (never disable the cache otherwise).
func (c *Cluster) newSessionOpts(dc DCID, seq int32, coord topology.PartitionID, disableCache bool) (*Session, error) {
	mode := client.ModeNonBlocking
	if c.cfg.Mode == ModeBlocking {
		mode = client.ModeBlocking
	}
	// The client budget must cover a coordinator round trip that itself
	// contains cohort calls: a commit spans a 2PC prepare (one CallTimeout to
	// a dead cohort), a failover retry, and the commit fan-out, so the client
	// deadline is a multiple of the per-cohort-call bound. Left unset, the
	// client's own 60s default applies — which is how client stalls used to
	// outlive a 400ms cluster timeout by two orders of magnitude.
	clientTimeout := 4 * c.cfg.CallTimeout
	cl, err := client.New(client.Config{
		ID:           topology.ClientID(dc, seq),
		Coordinator:  topology.ServerID(dc, coord),
		Mode:         mode,
		CallTimeout:  clientTimeout,
		DisableCache: disableCache,
		CacheBypass:  c.resolvers.cacheBypass,
	})
	if err != nil {
		return nil, err
	}
	ep, err := c.net.Register(cl.ID(), cl.Peer())
	if err != nil {
		return nil, err
	}
	cl.Peer().Attach(ep)
	return &Session{c: cl, ep: ep}, nil
}

// PartitionOf exposes the key→partition hash.
func (c *Cluster) PartitionOf(key string) int { return int(c.topo.PartitionOf(key)) }

// MinUST returns the smallest UST across all servers — the stable snapshot
// guaranteed visible everywhere.
func (c *Cluster) MinUST() Timestamp {
	low := hlc.MaxTimestamp
	for _, s := range c.Servers() {
		if ust := s.UST(); ust < low {
			low = ust
		}
	}
	return low
}

// WaitForUST blocks until every server's UST reaches ts or the timeout
// expires; it reports whether the target was reached. Tests use it to wait
// for writes to become universally visible.
func (c *Cluster) WaitForUST(ts Timestamp, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if c.MinUST() >= ts {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

package paris_test

import (
	"context"
	"fmt"
	"time"

	"github.com/paris-kv/paris"
	"github.com/paris-kv/paris/internal/transport"
)

// quietConfig keeps doc examples fast and deterministic.
func quietConfig() paris.Config {
	return paris.Config{
		NumDCs:            3,
		NumPartitions:     6,
		ReplicationFactor: 2,
		Latency:           transport.Uniform{IntraDC: 0, InterDC: time.Millisecond},
		ApplyInterval:     time.Millisecond,
		GossipInterval:    time.Millisecond,
		USTInterval:       time.Millisecond,
	}
}

// ExampleSession_Update shows the basic transactional write-then-read flow.
func ExampleSession_Update() {
	cluster, err := paris.NewCluster(quietConfig())
	if err != nil {
		panic(err)
	}
	defer func() { _ = cluster.Close() }()

	ctx := context.Background()
	session, err := cluster.NewSession(0)
	if err != nil {
		panic(err)
	}
	defer session.Close()

	if _, err := session.Update(ctx, func(tx *paris.Tx) error {
		return tx.Write("greeting", []byte("bonjour"))
	}); err != nil {
		panic(err)
	}

	vals, err := session.Get(ctx, "greeting")
	if err != nil {
		panic(err)
	}
	fmt.Println(string(vals["greeting"]))
	// Output: bonjour
}

// ExampleTx_AddCounter shows conflict-free counters: concurrent increments
// merge by summation instead of last-writer-wins.
func ExampleTx_AddCounter() {
	cfg := quietConfig()
	cfg.Resolvers = map[string]paris.ResolverKind{"cnt:": paris.ResolverCounter}
	cluster, err := paris.NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	defer func() { _ = cluster.Close() }()

	ctx := context.Background()
	var last paris.Timestamp
	for dc := paris.DCID(0); dc < 3; dc++ {
		session, err := cluster.NewSession(dc)
		if err != nil {
			panic(err)
		}
		ct, err := session.Update(ctx, func(tx *paris.Tx) error {
			return tx.AddCounter("cnt:likes", 10)
		})
		session.Close()
		if err != nil {
			panic(err)
		}
		if ct > last {
			last = ct
		}
	}
	if !cluster.WaitForUST(last, 10*time.Second) {
		panic("stabilization stalled")
	}

	session, err := cluster.NewSession(1)
	if err != nil {
		panic(err)
	}
	defer session.Close()
	var likes int64
	if err := session.View(ctx, func(tx *paris.Tx) error {
		var err error
		likes, err = tx.ReadCounter(ctx, "cnt:likes")
		return err
	}); err != nil {
		panic(err)
	}
	fmt.Println(likes)
	// Output: 30
}

// ExampleCluster_WaitForUST shows how a commit becomes universally visible
// once the Universal Stable Time passes its commit timestamp.
func ExampleCluster_WaitForUST() {
	cluster, err := paris.NewCluster(quietConfig())
	if err != nil {
		panic(err)
	}
	defer func() { _ = cluster.Close() }()

	ctx := context.Background()
	writer, err := cluster.NewSession(0)
	if err != nil {
		panic(err)
	}
	defer writer.Close()

	ct, err := writer.Put(ctx, map[string][]byte{"k": []byte("v")})
	if err != nil {
		panic(err)
	}
	if !cluster.WaitForUST(ct, 10*time.Second) {
		panic("stabilization stalled")
	}

	// Any session in any DC now sees the write.
	reader, err := cluster.NewSession(2)
	if err != nil {
		panic(err)
	}
	defer reader.Close()
	vals, err := reader.Get(ctx, "k")
	if err != nil {
		panic(err)
	}
	fmt.Println(string(vals["k"]))
	// Output: v
}

package paris

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// These tests assert the paper's correctness propositions (§IV-C) directly
// at the protocol level, complementing the history checker's black-box
// validation.

// TestLemma1SnapshotBelowCommit: "The snapshot time of a transaction T is
// always lower than the commit time of T."
func TestLemma1SnapshotBelowCommit(t *testing.T) {
	c := newTestCluster(t, testConfig())
	ctx := context.Background()
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 30; i++ {
		tx, err := s.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		snap := tx.Snapshot()
		if err := tx.Write(fmt.Sprintf("lemma1-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		ct, err := tx.Commit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ct <= snap {
			t.Fatalf("commit %v not above snapshot %v", ct, snap)
		}
	}
}

// TestProp1SessionOrderTimestamps: case 1 of Proposition 1 — successive
// update transactions of one session have strictly increasing commit
// timestamps (hwtc threading through 2PC).
func TestProp1SessionOrderTimestamps(t *testing.T) {
	c := newTestCluster(t, testConfig())
	ctx := context.Background()
	s, err := c.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var prev Timestamp
	for i := 0; i < 30; i++ {
		ct, err := s.Put(ctx, map[string][]byte{fmt.Sprintf("prop1-%d", i%5): []byte("v")})
		if err != nil {
			t.Fatal(err)
		}
		if ct <= prev {
			t.Fatalf("session commit order violated: %v after %v", ct, prev)
		}
		prev = ct
	}
}

// TestProp1ReadFromTimestamps: case 2 of Proposition 1 — if a session reads
// version X and then writes Y, then Y's commit timestamp exceeds X's update
// timestamp (u1 → u2 ⇒ u1.ut < u2.ut across sessions).
func TestProp1ReadFromTimestamps(t *testing.T) {
	c := newTestCluster(t, testConfig())
	ctx := context.Background()

	alice, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	bob, err := c.NewSession(2)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	for round := 0; round < 10; round++ {
		ctX, err := alice.Put(ctx, map[string][]byte{"prop1-x": []byte(fmt.Sprintf("r%d", round))})
		if err != nil {
			t.Fatal(err)
		}
		// Bob waits until he observes exactly this version, then writes.
		deadline := time.Now().Add(5 * time.Second)
		for {
			tx, err := bob.Begin(ctx)
			if err != nil {
				t.Fatal(err)
			}
			raw, _, err := tx.ReadOne(ctx, "prop1-x")
			if err != nil {
				t.Fatal(err)
			}
			if string(raw) == fmt.Sprintf("r%d", round) {
				if err := tx.Write("prop1-y", raw); err != nil {
					t.Fatal(err)
				}
				ctY, err := tx.Commit(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if ctY <= ctX {
					t.Fatalf("read-from order violated: Y commits at %v, X at %v", ctY, ctX)
				}
				break
			}
			if _, err := tx.Commit(ctx); err != nil {
				t.Fatal(err)
			}
			if time.Now().After(deadline) {
				t.Fatal("Alice's write never became visible")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestProp2VersionVectorCoverage: "VV[i] = t implies the server received
// all updates from the i-th replica with commit time ≤ t" — after quiescing,
// every server's installed lower bound covers every commit it stores.
func TestProp2VersionVectorCoverage(t *testing.T) {
	c := newTestCluster(t, testConfig())
	ctx := context.Background()
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var last Timestamp
	for i := 0; i < 20; i++ {
		ct, err := s.Put(ctx, map[string][]byte{fmt.Sprintf("prop2-%d", i): []byte("v")})
		if err != nil {
			t.Fatal(err)
		}
		last = ct
	}
	if !c.WaitForUST(last, 5*time.Second) {
		t.Fatal("UST stalled")
	}

	// The UST is a lower bound on every installed lower bound (safety of
	// the stabilization aggregation).
	for _, srv := range c.Servers() {
		if ilb := srv.InstalledLowerBound(); srv.UST() > ilb {
			t.Fatalf("server %v: UST %v above installed bound %v", srv.ID(), srv.UST(), ilb)
		}
	}
}

// TestProp4AtomicCommitTimestamps: all updates of one transaction carry the
// same commit timestamp on every replica that stores them (the mechanism
// behind write atomicity).
func TestProp4AtomicCommitTimestamps(t *testing.T) {
	c := newTestCluster(t, testConfig())
	ctx := context.Background()
	s, err := c.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Keys on distinct partitions, written atomically.
	k1 := "prop4-a"
	k2 := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("prop4-b%d", i)
		if c.PartitionOf(k) != c.PartitionOf(k1) {
			k2 = k
			break
		}
	}
	ct, err := s.Put(ctx, map[string][]byte{k1: []byte("1"), k2: []byte("2")})
	if err != nil {
		t.Fatal(err)
	}
	if !c.WaitForUST(ct, 5*time.Second) {
		t.Fatal("UST stalled")
	}

	topo := c.Topology()
	for _, key := range []string{k1, k2} {
		p := topo.PartitionOf(key)
		for _, dc := range topo.ReplicaDCs(p) {
			item, ok := c.Server(dc, int(p)).Store().ReadLatest(key)
			if !ok {
				t.Fatalf("replica %v missing %q", dc, key)
			}
			if item.UT != ct {
				t.Fatalf("key %q on DC %d has ut %v, commit was %v", key, dc, item.UT, ct)
			}
		}
	}
}

// TestUSTSafetyUnderLoad samples the global invariant ust ≤ min(VV) across
// all servers while a workload runs: the UST must never claim stability
// beyond what is actually installed.
func TestUSTSafetyUnderLoad(t *testing.T) {
	c := newTestCluster(t, testConfig())
	ctx := context.Background()

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		s, err := c.NewSession(0)
		if err != nil {
			done <- err
			return
		}
		defer s.Close()
		i := 0
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			if _, err := s.Put(ctx, map[string][]byte{fmt.Sprintf("load-%d", i%7): []byte("v")}); err != nil {
				done <- err
				return
			}
			i++
		}
	}()

	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		for _, srv := range c.Servers() {
			ust := srv.UST()
			ilb := srv.InstalledLowerBound()
			if ust > ilb {
				close(stop)
				<-done
				t.Fatalf("UST safety violated on %v: ust=%v installed=%v", srv.ID(), ust, ilb)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

package paris

import (
	"context"

	"github.com/paris-kv/paris/internal/client"
	"github.com/paris-kv/paris/internal/transport"
)

// Session is a client session bound to one coordinator: the public handle
// for running transactions.
type Session struct {
	c  *client.Client
	ep transport.Endpoint
}

// Close releases the session's transport resources.
func (s *Session) Close() {
	s.c.Close()
	_ = s.ep.Close()
}

// Client exposes the underlying protocol client (statistics, session
// timestamps).
func (s *Session) Client() *client.Client { return s.c }

// Tx is an open interactive transaction.
type Tx struct {
	s *Session
}

// Begin starts an interactive transaction.
func (s *Session) Begin(ctx context.Context) (*Tx, error) {
	if err := s.c.Start(ctx); err != nil {
		return nil, err
	}
	return &Tx{s: s}, nil
}

// Read returns the visible values of keys; absent keys have no entry.
func (t *Tx) Read(ctx context.Context, keys ...string) (map[string][]byte, error) {
	return t.s.c.Read(ctx, keys...)
}

// ReadOne reads one key.
func (t *Tx) ReadOne(ctx context.Context, key string) ([]byte, bool, error) {
	return t.s.c.ReadOne(ctx, key)
}

// Write buffers an update; it becomes atomically visible at commit.
func (t *Tx) Write(key string, value []byte) error {
	return t.s.c.Write(key, value)
}

// Snapshot returns the transaction's snapshot timestamp.
func (t *Tx) Snapshot() Timestamp { return t.s.c.Snapshot() }

// Commit finalizes the transaction, returning the commit timestamp (zero
// for read-only transactions).
func (t *Tx) Commit(ctx context.Context) (Timestamp, error) {
	return t.s.c.Commit(ctx)
}

// Abandon abandons the transaction without committing buffered writes.
func (t *Tx) Abandon() { t.s.c.Abandon() }

// Update runs fn inside a transaction and commits it, returning the commit
// timestamp. If fn returns an error the transaction is abandoned.
func (s *Session) Update(ctx context.Context, fn func(tx *Tx) error) (Timestamp, error) {
	tx, err := s.Begin(ctx)
	if err != nil {
		return 0, err
	}
	if err := fn(tx); err != nil {
		tx.Abandon()
		return 0, err
	}
	return tx.Commit(ctx)
}

// View runs fn inside a read-only transaction.
func (s *Session) View(ctx context.Context, fn func(tx *Tx) error) error {
	tx, err := s.Begin(ctx)
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Abandon()
		return err
	}
	_, err = tx.Commit(ctx)
	return err
}

// Get is a convenience one-shot read-only transaction over a set of keys.
func (s *Session) Get(ctx context.Context, keys ...string) (map[string][]byte, error) {
	var out map[string][]byte
	err := s.View(ctx, func(tx *Tx) error {
		var err error
		out, err = tx.Read(ctx, keys...)
		return err
	})
	return out, err
}

// Put is a convenience one-shot write transaction.
func (s *Session) Put(ctx context.Context, kvs map[string][]byte) (Timestamp, error) {
	return s.Update(ctx, func(tx *Tx) error {
		for k, v := range kvs {
			if err := tx.Write(k, v); err != nil {
				return err
			}
		}
		return nil
	})
}

// Package paris_test hosts one testing.B benchmark per table and figure of
// the paper's evaluation (§V), plus ablations for the design choices called
// out in DESIGN.md. Each benchmark runs a closed-loop workload against an
// embedded cluster and reports domain metrics (tx/s, latency, blocking time,
// visibility) via b.ReportMetric, so `go test -bench=.` regenerates the
// numbers EXPERIMENTS.md records.
package paris_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/paris-kv/paris"
	"github.com/paris-kv/paris/internal/bench"
	"github.com/paris-kv/paris/internal/workload"
)

// benchCluster builds the paper's default deployment shape scaled for a
// single host; mode and sizing are per-benchmark.
func benchCluster(b *testing.B, cfg paris.Config) *paris.Cluster {
	b.Helper()
	c, err := paris.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = c.Close() })
	return c
}

func paperConfig(mode paris.Mode) paris.Config {
	cfg := paris.DefaultConfig() // 5 DCs, 45 partitions, RF 2
	cfg.Mode = mode
	cfg.LatencyScale = 0.02
	return cfg
}

// runLoadPoint executes one measured load point and reports tx/s and
// latency percentiles to the benchmark framework.
func runLoadPoint(b *testing.B, c *paris.Cluster, mix workload.Mix, threadsPerDC int) bench.Result {
	b.Helper()
	var last bench.Result
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(bench.RunConfig{
			Cluster:      c,
			Mix:          mix,
			ThreadsPerDC: threadsPerDC,
			Duration:     500 * time.Millisecond,
			Warmup:       150 * time.Millisecond,
			Seed:         int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ThroughputTx, "tx/s")
	b.ReportMetric(float64(last.Latency.Mean().Microseconds())/1000, "avg-ms")
	b.ReportMetric(float64(last.Latency.Percentile(0.99).Microseconds())/1000, "p99-ms")
	return last
}

// --- Figure 1a: throughput vs latency, read-heavy (95:5) ---

func BenchmarkFig1aReadHeavyParis(b *testing.B) {
	c := benchCluster(b, paperConfig(paris.ModeNonBlocking))
	runLoadPoint(b, c, workload.ReadHeavy, 4)
}

func BenchmarkFig1aReadHeavyBPR(b *testing.B) {
	c := benchCluster(b, paperConfig(paris.ModeBlocking))
	runLoadPoint(b, c, workload.ReadHeavy, 4)
}

// --- Figure 1b: throughput vs latency, write-heavy (50:50) ---

func BenchmarkFig1bWriteHeavyParis(b *testing.B) {
	c := benchCluster(b, paperConfig(paris.ModeNonBlocking))
	runLoadPoint(b, c, workload.WriteHeavy, 4)
}

func BenchmarkFig1bWriteHeavyBPR(b *testing.B) {
	c := benchCluster(b, paperConfig(paris.ModeBlocking))
	runLoadPoint(b, c, workload.WriteHeavy, 4)
}

// --- §V-B: BPR read-phase blocking time ---

func BenchmarkBlockingTimeReadHeavy(b *testing.B) {
	c := benchCluster(b, paperConfig(paris.ModeBlocking))
	res := runLoadPoint(b, c, workload.ReadHeavy, 4)
	b.ReportMetric(float64(res.MeanBlockingTime().Microseconds())/1000, "block-ms")
}

func BenchmarkBlockingTimeWriteHeavy(b *testing.B) {
	c := benchCluster(b, paperConfig(paris.ModeBlocking))
	res := runLoadPoint(b, c, workload.WriteHeavy, 4)
	b.ReportMetric(float64(res.MeanBlockingTime().Microseconds())/1000, "block-ms")
}

// --- Figure 2a: scaling machines per DC (6, 12, 18) at 3 and 5 DCs ---

func BenchmarkFig2aScaleMachines(b *testing.B) {
	for _, dcs := range []int{3, 5} {
		for _, machines := range []int{6, 12, 18} {
			b.Run(fmt.Sprintf("dcs=%d/machines=%d", dcs, machines), func(b *testing.B) {
				cfg := paperConfig(paris.ModeNonBlocking)
				cfg.NumDCs = dcs
				cfg.NumPartitions = dcs * machines / cfg.ReplicationFactor
				c := benchCluster(b, cfg)
				runLoadPoint(b, c, workload.ReadHeavy, 4)
			})
		}
	}
}

// --- Figure 2b: scaling DCs (3, 5, 10) at 6 and 12 machines per DC ---

func BenchmarkFig2bScaleDCs(b *testing.B) {
	for _, machines := range []int{6, 12} {
		for _, dcs := range []int{3, 5, 10} {
			b.Run(fmt.Sprintf("machines=%d/dcs=%d", machines, dcs), func(b *testing.B) {
				cfg := paperConfig(paris.ModeNonBlocking)
				cfg.NumDCs = dcs
				cfg.NumPartitions = dcs * machines / cfg.ReplicationFactor
				c := benchCluster(b, cfg)
				runLoadPoint(b, c, workload.ReadHeavy, 4)
			})
		}
	}
}

// --- Figure 3: locality sweep (100:0, 95:5, 90:10, 50:50) ---

func BenchmarkFig3Locality(b *testing.B) {
	for _, local := range []float64{1.0, 0.95, 0.90, 0.50} {
		b.Run(fmt.Sprintf("local=%.0f%%", local*100), func(b *testing.B) {
			c := benchCluster(b, paperConfig(paris.ModeNonBlocking))
			runLoadPoint(b, c, workload.ReadHeavy.WithLocality(local), 4)
		})
	}
}

// --- Figure 4: update visibility latency CDF ---

func benchVisibility(b *testing.B, mode paris.Mode) {
	cfg := paperConfig(mode)
	cfg.VisibilitySample = 4
	c := benchCluster(b, cfg)
	var samples []time.Duration
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(bench.RunConfig{
			Cluster:      c,
			Mix:          workload.ReadHeavy,
			ThreadsPerDC: 4,
			Duration:     500 * time.Millisecond,
			Warmup:       150 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		samples = res.Visibility
	}
	if len(samples) == 0 {
		b.Fatal("no visibility samples")
	}
	qs := bench.NewQuantiles(samples)
	b.ReportMetric(float64(qs.At(0.50).Microseconds())/1000, "vis-p50-ms")
	b.ReportMetric(float64(qs.At(0.90).Microseconds())/1000, "vis-p90-ms")
	b.ReportMetric(float64(qs.At(0.99).Microseconds())/1000, "vis-p99-ms")
}

func BenchmarkFig4VisibilityParis(b *testing.B) {
	benchVisibility(b, paris.ModeNonBlocking)
}

func BenchmarkFig4VisibilityBPR(b *testing.B) {
	benchVisibility(b, paris.ModeBlocking)
}

// --- Ablations (beyond the paper; see DESIGN.md §3) ---

// BenchmarkAblationStabilizationInterval sweeps ΔG/ΔU: faster gossip buys
// fresher snapshots (lower visibility latency) at higher message cost.
func BenchmarkAblationStabilizationInterval(b *testing.B) {
	for _, interval := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		b.Run(interval.String(), func(b *testing.B) {
			cfg := paperConfig(paris.ModeNonBlocking)
			cfg.GossipInterval = interval
			cfg.USTInterval = interval
			cfg.ApplyInterval = interval
			cfg.VisibilitySample = 4
			c := benchCluster(b, cfg)
			msgs0 := c.Net().MessagesSent()
			res := runLoadPoint(b, c, workload.ReadHeavy, 4)
			if len(res.Visibility) > 0 {
				b.ReportMetric(float64(bench.PercentileOf(res.Visibility, 0.5).Microseconds())/1000, "vis-p50-ms")
			}
			b.ReportMetric(float64(c.Net().MessagesSent()-msgs0), "msgs")
		})
	}
}

// BenchmarkAblationReplicationFactor sweeps R: higher replication factors
// serve more reads locally but multiply update propagation.
func BenchmarkAblationReplicationFactor(b *testing.B) {
	for _, rf := range []int{2, 3} {
		b.Run(fmt.Sprintf("rf=%d", rf), func(b *testing.B) {
			cfg := paperConfig(paris.ModeNonBlocking)
			cfg.ReplicationFactor = rf
			c := benchCluster(b, cfg)
			runLoadPoint(b, c, workload.ReadHeavy, 4)
		})
	}
}

// BenchmarkAblationClockSkew sweeps NTP-style clock error: HLCs keep
// latency flat, while the stable snapshot's staleness absorbs the skew.
func BenchmarkAblationClockSkew(b *testing.B) {
	for _, skew := range []time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond} {
		b.Run(skew.String(), func(b *testing.B) {
			cfg := paperConfig(paris.ModeNonBlocking)
			cfg.ClockSkew = skew
			c := benchCluster(b, cfg)
			runLoadPoint(b, c, workload.ReadHeavy, 4)
		})
	}
}

// BenchmarkAblationMessageOverhead breaks the wire traffic down by message
// kind under load, quantifying the paper's meta-data efficiency claim: the
// stabilization protocol (GSTUp/GSTRoot/USTDown/heartbeats) runs at a
// constant rate set by the gossip intervals and deployment size —
// independent of transaction throughput — with single-timestamp payloads.
func BenchmarkAblationMessageOverhead(b *testing.B) {
	c := benchCluster(b, paperConfig(paris.ModeNonBlocking))
	before := c.Net().MessagesByKind()
	runLoadPoint(b, c, workload.ReadHeavy, 4)
	after := c.Net().MessagesByKind()
	var gossip, data float64
	for kind, n := range after {
		delta := float64(n - before[kind])
		switch kind.String() {
		case "GSTUp", "GSTRoot", "USTDown", "Heartbeat":
			gossip += delta
		default:
			data += delta
		}
	}
	b.ReportMetric(gossip, "gossip-msgs")
	b.ReportMetric(data, "data-msgs")
	if data > 0 {
		b.ReportMetric(100*gossip/(gossip+data), "gossip-%")
	}
}

package paris

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/paris-kv/paris/internal/transport"
)

// Flow-control sizing for the backpressure stress: a budget far below the
// offered write volume so every destination's pump saturates, with the
// chunk cap well under the high water so single rounds always admit.
const (
	testFlowBudget    = 2 << 10
	testFlowHighWater = 8 << 10
	testFlowLowWater  = 2 << 10
	testFlowBatchMax  = 2 << 10
)

// TestFlowControlBackpressureBound is the -race backpressure stress: writers
// hammer kilobyte values at a replication plane budgeted to a fraction of
// the offered load, with a bandwidth-constrained MemNet link underneath one
// replication direction. The per-destination send-queue byte bound must hold
// on every server for the whole run — that is the sender-memory guarantee
// flow control exists for — and once the throttle opens the cluster must
// converge to a universally stable probe.
func TestFlowControlBackpressureBound(t *testing.T) {
	cfg := testConfig()
	cfg.BandwidthBudget = testFlowBudget
	cfg.FlowHighWater = testFlowHighWater
	cfg.FlowLowWater = testFlowLowWater
	cfg.BatchMaxBytes = testFlowBatchMax
	c := newTestCluster(t, cfg)

	// One WAN-constrained replication direction on top of the budget: DC0's
	// servers reach DC1's at a tenth of the budget, plus added latency.
	slow := transport.FaultSlowLink{Rate: testFlowBudget / 10, Delay: 2 * time.Millisecond}
	for _, x := range c.Topology().AllServers() {
		for _, y := range c.Topology().AllServers() {
			if x.DC == 0 && y.DC == 1 {
				c.Net().SetLinkSlow(x, y, slow)
			}
		}
	}

	writeFor := 800 * time.Millisecond
	if testing.Short() {
		writeFor = 300 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	val := make([]byte, 1024)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := c.NewSession(DCID(w % 3))
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer sess.Close()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sess.Put(ctx, map[string][]byte{
					fmt.Sprintf("flow-%d-%d", w, i): val,
				}); err != nil {
					sess.Client().Abandon()
				}
			}
		}(w)
	}
	time.Sleep(writeFor)
	close(stop)
	wg.Wait()

	// The hard invariant: no destination's queue ever crossed the high
	// water, on any server, at any point — checked against the lifetime max,
	// not a lucky snapshot.
	var maxQueued int
	var degraded, coalesced uint64
	for _, srv := range c.Servers() {
		for _, st := range srv.FlowStats() {
			if st.MaxQueuedBytes > testFlowHighWater {
				t.Errorf("server %v -> %v queued %d bytes, above high water %d",
					srv.ID(), st.Dest, st.MaxQueuedBytes, testFlowHighWater)
			}
			if st.MaxQueuedBytes > maxQueued {
				maxQueued = st.MaxQueuedBytes
			}
			degraded += st.DegradedEntries
			coalesced += st.Coalesced
		}
	}
	if maxQueued == 0 {
		t.Fatal("no bytes ever queued — flow control was not in the path")
	}
	if degraded == 0 {
		t.Error("no destination degraded — the budget never saturated")
	}
	if coalesced == 0 {
		t.Error("no rounds coalesced under pressure")
	}
	t.Logf("flow: maxQueued=%dB degradedEntries=%d coalesced=%d", maxQueued, degraded, coalesced)

	// Open the throttle and heal the link: the backlog plus every shed
	// window's repair must drain to a universally stable probe.
	c.Net().ClearSlowLinks()
	c.SetFlowBudget(8<<20, 0)
	sess, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ct, err := sess.Put(context.Background(), map[string][]byte{"flow-probe": []byte("x")})
	if err != nil {
		t.Fatalf("probe write: %v", err)
	}
	if !c.WaitForUST(ct, 10*time.Second) {
		t.Fatal("probe never became universally stable after opening the throttle")
	}
}

// TestFlowControlDisabledByDefault: without a budget the pumps do not exist
// and replication takes the direct path.
func TestFlowControlDisabledByDefault(t *testing.T) {
	c := newTestCluster(t, testConfig())
	for _, srv := range c.Servers() {
		if st := srv.FlowStats(); st != nil {
			t.Fatalf("server %v has flow stats %v without a budget", srv.ID(), st)
		}
	}
}
